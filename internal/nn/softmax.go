package nn

import (
	"math"

	"repro/internal/stats"
)

// MaskedSoftmax converts scores to a probability distribution over the
// entries whose mask is true; masked-out entries get probability 0. It
// panics if no entry is valid. The computation is max-shifted for numerical
// stability.
func MaskedSoftmax(scores []float64, mask []bool) []float64 {
	return MaskedSoftmaxInto(scores, mask, make([]float64, len(scores)))
}

// MaskedSoftmaxInto is MaskedSoftmax writing into caller-provided scratch
// (len == len(scores)), allocation-free on the per-decision hot path. It
// returns probs.
func MaskedSoftmaxInto(scores []float64, mask []bool, probs []float64) []float64 {
	if len(scores) != len(mask) {
		panic("nn: softmax scores/mask length mismatch")
	}
	if len(probs) != len(scores) {
		panic("nn: softmax scratch length mismatch")
	}
	maxV := math.Inf(-1)
	any := false
	for i, s := range scores {
		if mask[i] {
			any = true
			if s > maxV {
				maxV = s
			}
		}
	}
	if !any {
		panic("nn: softmax with empty mask")
	}
	var sum float64
	for i, s := range scores {
		if mask[i] {
			probs[i] = math.Exp(s - maxV)
			sum += probs[i]
		} else {
			probs[i] = 0
		}
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs
}

// LogProb returns log(probs[a]), floored to avoid -Inf from numerical
// underflow.
func LogProb(probs []float64, a int) float64 {
	p := probs[a]
	if p < 1e-300 {
		p = 1e-300
	}
	return math.Log(p)
}

// Entropy returns the Shannon entropy of the distribution (natural log).
func Entropy(probs []float64) float64 {
	h := 0.0
	for _, p := range probs {
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// SampleCategorical draws an index from the distribution using rng. Masked
// (zero-probability) entries are never selected.
func SampleCategorical(probs []float64, rng *stats.RNG) int {
	u := rng.Float64()
	acc := 0.0
	last := -1
	for i, p := range probs {
		if p <= 0 {
			continue
		}
		acc += p
		last = i
		if u < acc {
			return i
		}
	}
	// Floating-point slack: fall back to the last valid entry.
	if last < 0 {
		panic("nn: sampling from an all-zero distribution")
	}
	return last
}

// Argmax returns the index of the largest probability (first on ties) among
// valid entries.
func Argmax(probs []float64) int {
	best, bestV := -1, math.Inf(-1)
	for i, p := range probs {
		if p > bestV {
			best, bestV = i, p
		}
	}
	return best
}

// SoftmaxLogProbGrad computes d(log p[a])/d(scores[i]) for a masked softmax:
// delta(i==a) - p[i] on valid entries, 0 on masked ones. The result is
// written into grad (len == len(probs)).
func SoftmaxLogProbGrad(probs []float64, mask []bool, a int, grad []float64) {
	for i := range grad {
		if !mask[i] {
			grad[i] = 0
			continue
		}
		g := -probs[i]
		if i == a {
			g += 1
		}
		grad[i] = g
	}
}

// SoftmaxPolicyGrad fuses SoftmaxLogProbGrad and SoftmaxEntropyGrad into the
// PPO policy score gradient dlogp*d(log p[a])/ds - entropyCoef*dH/ds in a
// single scratch-free pass, writing into grad. It is bit-identical to the
// two-pass composition: each term is computed with the same expressions and
// combined in the same order.
func SoftmaxPolicyGrad(probs []float64, mask []bool, a int, dlogp, entropyCoef float64, grad []float64) {
	if entropyCoef == 0 {
		for i := range grad {
			if !mask[i] {
				grad[i] = 0
				continue
			}
			g := -probs[i]
			if i == a {
				g += 1
			}
			grad[i] = g * dlogp
		}
		return
	}
	h := Entropy(probs)
	for i := range grad {
		if !mask[i] {
			grad[i] = 0
			continue
		}
		g := -probs[i]
		if i == a {
			g += 1
		}
		var eg float64
		if probs[i] > 0 {
			eg = -probs[i] * (math.Log(probs[i]) + h)
		}
		grad[i] = dlogp*g - entropyCoef*eg
	}
}

// SoftmaxEntropyGrad computes dH/d(scores[i]) = -p[i]*(log p[i] + H) for a
// masked softmax, writing into grad.
func SoftmaxEntropyGrad(probs []float64, mask []bool, grad []float64) {
	h := Entropy(probs)
	for i := range grad {
		if !mask[i] || probs[i] <= 0 {
			grad[i] = 0
			continue
		}
		grad[i] = -probs[i] * (math.Log(probs[i]) + h)
	}
}
