package nn

import (
	"encoding/json"
	"fmt"
	"io"
)

// mlpJSON is the stable on-disk form of an MLP.
type mlpJSON struct {
	Sizes []int       `json:"sizes"`
	Act   Activation  `json:"act"`
	W     [][]float64 `json:"w"` // row-major per layer
	B     [][]float64 `json:"b"`
}

// MarshalJSON implements json.Marshaler.
func (m *MLP) MarshalJSON() ([]byte, error) {
	j := mlpJSON{Sizes: m.Sizes, Act: m.Act}
	for l := range m.W {
		j.W = append(j.W, m.W[l].Data)
		j.B = append(j.B, m.B[l])
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var j mlpJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.Sizes) < 2 {
		return fmt.Errorf("nn: serialized MLP has %d sizes", len(j.Sizes))
	}
	if len(j.W) != len(j.Sizes)-1 || len(j.B) != len(j.Sizes)-1 {
		return fmt.Errorf("nn: serialized MLP layer count mismatch")
	}
	m.Sizes = j.Sizes
	m.Act = j.Act
	m.W = nil
	m.B = nil
	for l := 0; l < len(j.Sizes)-1; l++ {
		in, out := j.Sizes[l], j.Sizes[l+1]
		if len(j.W[l]) != in*out || len(j.B[l]) != out {
			return fmt.Errorf("nn: serialized MLP layer %d has wrong shape", l)
		}
		w := NewMat(out, in)
		copy(w.Data, j.W[l])
		m.W = append(m.W, w)
		m.B = append(m.B, j.B[l])
	}
	return nil
}

// Save writes the network as JSON.
func (m *MLP) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(m)
}

// LoadMLP reads a network saved with Save.
func LoadMLP(r io.Reader) (*MLP, error) {
	m := &MLP{}
	dec := json.NewDecoder(r)
	if err := dec.Decode(m); err != nil {
		return nil, fmt.Errorf("nn: loading MLP: %w", err)
	}
	return m, nil
}
