// Package nn is a small, dependency-free neural-network library: dense
// matrices, multi-layer perceptrons with exact manual backpropagation,
// masked softmax/categorical utilities and the Adam optimiser. It exists
// because the paper's agent runs on PyTorch, for which Go has no equivalent
// (the repro gate); the networks involved are tiny MLPs, so exact gradients
// are hand-derived and verified against finite differences in the tests.
package nn

import "fmt"

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMat allocates a zeroed Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero clears all elements.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone deep-copies the matrix.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// AddScaled accumulates a*o into m. Shapes must match.
func (m *Mat) AddScaled(o *Mat, a float64) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("nn: AddScaled shape mismatch")
	}
	for i, v := range o.Data {
		m.Data[i] += a * v
	}
}

// MulVec computes y = M*x (y has len Rows, x len Cols).
func (m *Mat) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("nn: MulVec shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, w := range row {
			s += w * x[j]
		}
		y[i] = s
	}
}

// MulVecT computes y = Mᵀ*x (x has len Rows, y len Cols), used for gradient
// backpropagation through a linear layer.
func (m *Mat) MulVecT(x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("nn: MulVecT shape mismatch")
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			y[j] += w * xi
		}
	}
}

// AddOuterScaled accumulates a * x·yᵀ into m (x len Rows, y len Cols): the
// weight-gradient update dW += a * gradOut ⊗ input.
func (m *Mat) AddOuterScaled(x, y []float64, a float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("nn: AddOuterScaled shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		xi := a * x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, yj := range y {
			row[j] += xi * yj
		}
	}
}
