// Package nn is a small, dependency-free neural-network library: dense
// matrices, multi-layer perceptrons with exact manual backpropagation,
// masked softmax/categorical utilities and the Adam optimiser. It exists
// because the paper's agent runs on PyTorch, for which Go has no equivalent
// (the repro gate); the networks involved are tiny MLPs, so exact gradients
// are hand-derived and verified against finite differences in the tests.
package nn

import "fmt"

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMat allocates a zeroed Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero clears all elements.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone deep-copies the matrix.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// AddScaled accumulates a*o into m. Shapes must match.
func (m *Mat) AddScaled(o *Mat, a float64) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic("nn: AddScaled shape mismatch")
	}
	for i, v := range o.Data {
		m.Data[i] += a * v
	}
}

// MulVec computes y = M*x (y has len Rows, x len Cols).
func (m *Mat) MulVec(x, y []float64) {
	if len(x) != m.Cols || len(y) != m.Rows {
		panic("nn: MulVec shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, w := range row {
			s += w * x[j]
		}
		y[i] = s
	}
}

// MulVecT computes y = Mᵀ*x (x has len Rows, y len Cols), used for gradient
// backpropagation through a linear layer.
func (m *Mat) MulVecT(x, y []float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("nn: MulVecT shape mismatch")
	}
	for j := range y {
		y[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			y[j] += w * xi
		}
	}
}

// MulMatT computes Y = X·Mᵀ, i.e. Y.Row(r) = M*X.Row(r) for every batch row
// (X is batch x Cols, Y batch x Rows): the batched forward of a linear layer.
//
// Bit-identity contract: every output element is a dot product accumulated
// over the input dimension in ascending index order — exactly MulVec's
// summation order — so MulMatT(X)[r] is bit-identical to MulVec(X.Row(r)).
// The kernel is blocked over four batch rows that share one scan of each
// weight row: the four accumulators are independent dependency chains, which
// is where the speedup over row-at-a-time MulVec comes from (a single dot
// product is serial in its adds and therefore FP-latency-bound).
func (m *Mat) MulMatT(x, y *Mat) {
	if x.Cols != m.Cols || y.Cols != m.Rows || x.Rows != y.Rows {
		panic("nn: MulMatT shape mismatch")
	}
	n, out := x.Rows, m.Rows
	r := 0
	for ; r+4 <= n; r += 4 {
		x0 := x.Data[r*x.Cols : (r+1)*x.Cols]
		x1 := x.Data[(r+1)*x.Cols : (r+2)*x.Cols]
		x2 := x.Data[(r+2)*x.Cols : (r+3)*x.Cols]
		x3 := x.Data[(r+3)*x.Cols : (r+4)*x.Cols]
		for k := 0; k < out; k++ {
			row := m.Data[k*m.Cols : (k+1)*m.Cols]
			var s0, s1, s2, s3 float64
			for j, w := range row {
				s0 += w * x0[j]
				s1 += w * x1[j]
				s2 += w * x2[j]
				s3 += w * x3[j]
			}
			y.Data[r*y.Cols+k] = s0
			y.Data[(r+1)*y.Cols+k] = s1
			y.Data[(r+2)*y.Cols+k] = s2
			y.Data[(r+3)*y.Cols+k] = s3
		}
	}
	for ; r < n; r++ {
		m.MulVec(x.Row(r), y.Row(r))
	}
}

// MulMat computes Y = D·M, i.e. Y.Row(r) = Mᵀ*D.Row(r) for every batch row
// (D is batch x Rows, Y batch x Cols): gradient backpropagation through a
// linear layer for a whole batch.
//
// Bit-identity contract: per output element the terms accumulate over M's row
// index in ascending order, matching MulVecT. MulVecT additionally skips
// zero coefficients; this kernel does not, which is still bit-identical for
// finite weights because an accumulator seeded with +0.0 can never become
// -0.0 under round-to-nearest, and adding w*(±0.0) to it is then the
// identity (see DESIGN.md §8).
func (m *Mat) MulMat(d, y *Mat) {
	if d.Cols != m.Rows || y.Cols != m.Cols || d.Rows != y.Rows {
		panic("nn: MulMat shape mismatch")
	}
	n := d.Rows
	r := 0
	for ; r+4 <= n; r += 4 {
		y0 := y.Data[r*y.Cols : (r+1)*y.Cols]
		y1 := y.Data[(r+1)*y.Cols : (r+2)*y.Cols]
		y2 := y.Data[(r+2)*y.Cols : (r+3)*y.Cols]
		y3 := y.Data[(r+3)*y.Cols : (r+4)*y.Cols]
		for j := range y0 {
			y0[j], y1[j], y2[j], y3[j] = 0, 0, 0, 0
		}
		for i := 0; i < m.Rows; i++ {
			d0 := d.Data[r*d.Cols+i]
			d1 := d.Data[(r+1)*d.Cols+i]
			d2 := d.Data[(r+2)*d.Cols+i]
			d3 := d.Data[(r+3)*d.Cols+i]
			if d0 == 0 && d1 == 0 && d2 == 0 && d3 == 0 {
				continue
			}
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			for j, w := range row {
				y0[j] += w * d0
				y1[j] += w * d1
				y2[j] += w * d2
				y3[j] += w * d3
			}
		}
	}
	for ; r < n; r++ {
		m.MulVecT(d.Row(r), y.Row(r))
	}
}

// AddMatOuterScaled accumulates a * Dᵀ·X into m row pair by row pair
// (D batch x Rows, X batch x Cols): the batched weight-gradient update
// dW += a * Σ_r gradOut_r ⊗ input_r.
//
// Bit-identity contract: per element of m the contributions are added one
// batch row at a time in ascending row order — never pre-reduced in a
// register — so the result is bit-identical to calling AddOuterScaled once
// per batch row, no matter how the caller splits batches.
func (m *Mat) AddMatOuterScaled(d, x *Mat, a float64) {
	if d.Cols != m.Rows || x.Cols != m.Cols || d.Rows != x.Rows {
		panic("nn: AddMatOuterScaled shape mismatch")
	}
	n := d.Rows
	r := 0
	for ; r+2 <= n; r += 2 {
		x0 := x.Data[r*x.Cols : (r+1)*x.Cols]
		x1 := x.Data[(r+1)*x.Cols : (r+2)*x.Cols]
		for k := 0; k < m.Rows; k++ {
			d0 := a * d.Data[r*d.Cols+k]
			d1 := a * d.Data[(r+1)*d.Cols+k]
			row := m.Data[k*m.Cols : (k+1)*m.Cols]
			switch {
			case d0 != 0 && d1 != 0:
				// One load/store of row[j] for both contributions; the two
				// adds stay separate instructions in row order.
				for j := range row {
					v := row[j] + d0*x0[j]
					row[j] = v + d1*x1[j]
				}
			case d0 != 0:
				for j := range row {
					row[j] += d0 * x0[j]
				}
			case d1 != 0:
				for j := range row {
					row[j] += d1 * x1[j]
				}
			}
		}
	}
	for ; r < n; r++ {
		m.AddOuterScaled(d.Row(r), x.Row(r), a)
	}
}

// AddOuterScaled accumulates a * x·yᵀ into m (x len Rows, y len Cols): the
// weight-gradient update dW += a * gradOut ⊗ input.
func (m *Mat) AddOuterScaled(x, y []float64, a float64) {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("nn: AddOuterScaled shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		xi := a * x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, yj := range y {
			row[j] += xi * yj
		}
	}
}
