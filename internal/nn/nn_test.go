package nn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.Row(1)[2] != 5 {
		t.Fatal("Set/At/Row inconsistent")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("Clone shares storage")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestMatMulVec(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y := make([]float64, 2)
	m.MulVec([]float64{1, 1, 1}, y)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
	x := make([]float64, 3)
	m.MulVecT([]float64{1, 1}, x)
	if x[0] != 5 || x[1] != 7 || x[2] != 9 {
		t.Fatalf("MulVecT = %v", x)
	}
}

func TestMatAddOuterScaled(t *testing.T) {
	m := NewMat(2, 2)
	m.AddOuterScaled([]float64{1, 2}, []float64{3, 4}, 2)
	want := []float64{6, 8, 12, 16}
	for i, v := range want {
		if m.Data[i] != v {
			t.Fatalf("AddOuterScaled = %v, want %v", m.Data, want)
		}
	}
}

func TestNewMLPShapes(t *testing.T) {
	rng := stats.NewRNG(1)
	m := NewMLP([]int{5, 8, 3}, ReLU, rng)
	if m.Layers() != 2 {
		t.Fatalf("Layers = %d", m.Layers())
	}
	if m.NumParams() != 5*8+8+8*3+3 {
		t.Fatalf("NumParams = %d", m.NumParams())
	}
	cache := NewCache(m)
	out := m.Forward([]float64{1, 2, 3, 4, 5}, cache)
	if len(out) != 3 {
		t.Fatalf("output size %d", len(out))
	}
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite output %v", out)
		}
	}
}

func TestMLPPanicsOnBadShapes(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, sizes := range [][]int{{3}, {3, 0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewMLP(%v) did not panic", sizes)
				}
			}()
			NewMLP(sizes, ReLU, rng)
		}()
	}
	m := NewMLP([]int{3, 2}, ReLU, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("Forward with wrong input size did not panic")
		}
	}()
	m.Forward([]float64{1}, NewCache(m))
}

// numericalGrad computes dLoss/dparam by central differences for every
// parameter of the network.
func numericalGrad(m *MLP, x []float64, loss func(out []float64) float64) *Grads {
	const h = 1e-6
	g := NewGrads(m)
	cache := NewCache(m)
	eval := func() float64 {
		out := m.Forward(x, cache)
		return loss(out)
	}
	for l := range m.W {
		for i := range m.W[l].Data {
			orig := m.W[l].Data[i]
			m.W[l].Data[i] = orig + h
			fp := eval()
			m.W[l].Data[i] = orig - h
			fm := eval()
			m.W[l].Data[i] = orig
			g.W[l].Data[i] = (fp - fm) / (2 * h)
		}
		for i := range m.B[l] {
			orig := m.B[l][i]
			m.B[l][i] = orig + h
			fp := eval()
			m.B[l][i] = orig - h
			fm := eval()
			m.B[l][i] = orig
			g.B[l][i] = (fp - fm) / (2 * h)
		}
	}
	return g
}

func gradsClose(a, b *Grads, tol float64) (bool, float64) {
	worst := 0.0
	for l := range a.W {
		for i := range a.W[l].Data {
			d := math.Abs(a.W[l].Data[i] - b.W[l].Data[i])
			scale := math.Max(1, math.Abs(b.W[l].Data[i]))
			if d/scale > worst {
				worst = d / scale
			}
		}
		for i := range a.B[l] {
			d := math.Abs(a.B[l][i] - b.B[l][i])
			scale := math.Max(1, math.Abs(b.B[l][i]))
			if d/scale > worst {
				worst = d / scale
			}
		}
	}
	return worst < tol, worst
}

func TestBackwardMatchesFiniteDifferences(t *testing.T) {
	for _, act := range []Activation{ReLU, Tanh, Identity} {
		for seed := uint64(1); seed <= 3; seed++ {
			rng := stats.NewRNG(seed)
			m := NewMLP([]int{4, 7, 5, 2}, act, rng)
			x := make([]float64, 4)
			for i := range x {
				x[i] = rng.Normal(0, 1)
			}
			// loss = 0.5*sum(out^2): dLoss/dout = out
			loss := func(out []float64) float64 {
				s := 0.0
				for _, v := range out {
					s += 0.5 * v * v
				}
				return s
			}
			cache := NewCache(m)
			out := m.Forward(x, cache)
			analytic := NewGrads(m)
			gradOut := append([]float64(nil), out...)
			m.Backward(cache, gradOut, analytic)
			numeric := numericalGrad(m, x, loss)
			if ok, worst := gradsClose(analytic, numeric, 1e-4); !ok {
				t.Fatalf("act=%s seed=%d: max relative gradient error %v", act, seed, worst)
			}
		}
	}
}

func TestBackwardInputGradient(t *testing.T) {
	rng := stats.NewRNG(4)
	m := NewMLP([]int{3, 6, 2}, Tanh, rng)
	x := []float64{0.3, -0.7, 1.2}
	cache := NewCache(m)
	out := m.Forward(x, cache)
	g := NewGrads(m)
	gradIn := m.Backward(cache, append([]float64(nil), out...), g)

	// numerically check dLoss/dx
	const h = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		outP := m.Forward(x, cache)
		lp := 0.5 * (outP[0]*outP[0] + outP[1]*outP[1])
		x[i] = orig - h
		outM := m.Forward(x, cache)
		lm := 0.5 * (outM[0]*outM[0] + outM[1]*outM[1])
		x[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-gradIn[i]) > 1e-4*math.Max(1, math.Abs(num)) {
			t.Fatalf("input gradient %d: analytic %v vs numeric %v", i, gradIn[i], num)
		}
	}
}

func TestGradsAddScaleZero(t *testing.T) {
	rng := stats.NewRNG(8)
	m := NewMLP([]int{2, 3, 1}, ReLU, rng)
	a, b := NewGrads(m), NewGrads(m)
	a.W[0].Set(0, 0, 2)
	b.W[0].Set(0, 0, 3)
	a.Add(b)
	if a.W[0].At(0, 0) != 5 {
		t.Fatalf("Add: %v", a.W[0].At(0, 0))
	}
	a.Scale(0.5)
	if a.W[0].At(0, 0) != 2.5 {
		t.Fatalf("Scale: %v", a.W[0].At(0, 0))
	}
	a.Zero()
	if a.W[0].At(0, 0) != 0 {
		t.Fatal("Zero failed")
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	// Minimise ||out(x0)||^2 for a fixed input; Adam should drive the output
	// toward zero.
	rng := stats.NewRNG(6)
	m := NewMLP([]int{3, 8, 2}, Tanh, rng)
	opt := NewAdam(m, 1e-2)
	x := []float64{1, -1, 0.5}
	cache := NewCache(m)
	g := NewGrads(m)
	lossAt := func() float64 {
		out := m.Forward(x, cache)
		return 0.5 * (out[0]*out[0] + out[1]*out[1])
	}
	initial := lossAt()
	for it := 0; it < 500; it++ {
		out := m.Forward(x, cache)
		g.Zero()
		m.Backward(cache, append([]float64(nil), out...), g)
		opt.Step(m, g)
	}
	final := lossAt()
	if final > initial*0.01 {
		t.Fatalf("Adam failed to minimise: %v -> %v", initial, final)
	}
}

func TestMaskedSoftmax(t *testing.T) {
	scores := []float64{1, 2, 3, 100}
	mask := []bool{true, true, true, false}
	p := MaskedSoftmax(scores, mask)
	if p[3] != 0 {
		t.Fatal("masked entry has probability")
	}
	sum := p[0] + p[1] + p[2]
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Fatalf("softmax not monotone: %v", p)
	}
}

func TestMaskedSoftmaxNumericalStability(t *testing.T) {
	p := MaskedSoftmax([]float64{1e4, 1e4 - 1}, []bool{true, true})
	if math.IsNaN(p[0]) || p[0] <= p[1] {
		t.Fatalf("unstable softmax: %v", p)
	}
}

func TestMaskedSoftmaxPanicsOnEmptyMask(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty mask did not panic")
		}
	}()
	MaskedSoftmax([]float64{1, 2}, []bool{false, false})
}

func TestSampleCategoricalRespectssMask(t *testing.T) {
	rng := stats.NewRNG(3)
	p := MaskedSoftmax([]float64{5, 1, 3}, []bool{true, false, true})
	for i := 0; i < 2000; i++ {
		if a := SampleCategorical(p, rng); a == 1 {
			t.Fatal("sampled a masked action")
		}
	}
}

func TestSampleCategoricalFrequencies(t *testing.T) {
	rng := stats.NewRNG(5)
	probs := []float64{0.2, 0.5, 0.3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[SampleCategorical(probs, rng)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("action %d frequency %v, want %v", i, got, p)
		}
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{0.1, 0.7, 0.2}) != 1 {
		t.Fatal("Argmax wrong")
	}
}

func TestEntropyUniformIsMax(t *testing.T) {
	u := Entropy([]float64{0.25, 0.25, 0.25, 0.25})
	if math.Abs(u-math.Log(4)) > 1e-12 {
		t.Fatalf("uniform entropy %v, want ln4", u)
	}
	if Entropy([]float64{1, 0, 0, 0}) != 0 {
		t.Fatal("deterministic entropy not 0")
	}
}

// Property: SoftmaxLogProbGrad matches finite differences of log p[a] with
// respect to the scores.
func TestSoftmaxLogProbGradNumeric(t *testing.T) {
	rng := stats.NewRNG(10)
	f := func(seed uint16) bool {
		r := stats.NewRNG(uint64(seed))
		n := r.Intn(6) + 2
		scores := make([]float64, n)
		mask := make([]bool, n)
		nValid := 0
		for i := range scores {
			scores[i] = r.Normal(0, 2)
			mask[i] = r.Bool(0.7)
			if mask[i] {
				nValid++
			}
		}
		if nValid == 0 {
			mask[0] = true
			nValid = 1
		}
		// pick a valid action
		a := -1
		for i, m := range mask {
			if m {
				a = i
				break
			}
		}
		probs := MaskedSoftmax(scores, mask)
		grad := make([]float64, n)
		SoftmaxLogProbGrad(probs, mask, a, grad)
		const h = 1e-6
		for i := range scores {
			if !mask[i] {
				if grad[i] != 0 {
					return false
				}
				continue
			}
			orig := scores[i]
			scores[i] = orig + h
			lp := LogProb(MaskedSoftmax(scores, mask), a)
			scores[i] = orig - h
			lm := LogProb(MaskedSoftmax(scores, mask), a)
			scores[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-grad[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxEntropyGradNumeric(t *testing.T) {
	scores := []float64{0.5, -1.2, 2.0, 0.1}
	mask := []bool{true, true, false, true}
	probs := MaskedSoftmax(scores, mask)
	grad := make([]float64, 4)
	SoftmaxEntropyGrad(probs, mask, grad)
	const h = 1e-6
	for i := range scores {
		if !mask[i] {
			continue
		}
		orig := scores[i]
		scores[i] = orig + h
		hp := Entropy(MaskedSoftmax(scores, mask))
		scores[i] = orig - h
		hm := Entropy(MaskedSoftmax(scores, mask))
		scores[i] = orig
		num := (hp - hm) / (2 * h)
		if math.Abs(num-grad[i]) > 1e-4 {
			t.Fatalf("entropy grad %d: analytic %v vs numeric %v", i, grad[i], num)
		}
	}
}

func TestMLPSerializationRoundTrip(t *testing.T) {
	rng := stats.NewRNG(12)
	m := NewMLP([]int{4, 9, 3}, ReLU, rng)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMLP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.5, 2, 0.7}
	a := append([]float64(nil), m.Forward(x, NewCache(m))...)
	b := loaded.Forward(x, NewCache(loaded))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loaded network differs at output %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLoadMLPRejectsGarbage(t *testing.T) {
	if _, err := LoadMLP(bytes.NewReader([]byte("{"))); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := LoadMLP(bytes.NewReader([]byte(`{"sizes":[2],"act":"relu","w":[],"b":[]}`))); err == nil {
		t.Fatal("single-layer network accepted")
	}
	if _, err := LoadMLP(bytes.NewReader([]byte(`{"sizes":[2,2],"act":"relu","w":[[1,2,3]],"b":[[0,0]]}`))); err == nil {
		t.Fatal("wrong weight shape accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	rng := stats.NewRNG(13)
	m := NewMLP([]int{2, 3, 1}, Tanh, rng)
	c := m.Clone()
	c.W[0].Set(0, 0, 999)
	c.B[0][0] = 999
	if m.W[0].At(0, 0) == 999 || m.B[0][0] == 999 {
		t.Fatal("Clone shares parameter storage")
	}
}
