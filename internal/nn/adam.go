package nn

import "math"

// Adam implements the Adam optimiser (Kingma & Ba) over an MLP's parameters,
// as used by Spinning Up's PPO (§4.1.1: learning rate 1e-3).
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	t  int
	mW []*Mat
	vW []*Mat
	mB [][]float64
	vB [][]float64
}

// NewAdam creates an optimiser for the given network with standard moment
// decay rates (0.9, 0.999).
func NewAdam(m *MLP, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	for l := range m.W {
		a.mW = append(a.mW, NewMat(m.W[l].Rows, m.W[l].Cols))
		a.vW = append(a.vW, NewMat(m.W[l].Rows, m.W[l].Cols))
		a.mB = append(a.mB, make([]float64, len(m.B[l])))
		a.vB = append(a.vB, make([]float64, len(m.B[l])))
	}
	return a
}

// Step applies one Adam update to m's parameters in the direction that
// *descends* the loss whose gradients are in g.
func (a *Adam) Step(m *MLP, g *Grads) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for l := range m.W {
		updateAdam(m.W[l].Data, g.W[l].Data, a.mW[l].Data, a.vW[l].Data, a, c1, c2)
		updateAdam(m.B[l], g.B[l], a.mB[l], a.vB[l], a, c1, c2)
	}
}

func updateAdam(param, grad, mo, ve []float64, a *Adam, c1, c2 float64) {
	for i := range param {
		gi := grad[i]
		mo[i] = a.Beta1*mo[i] + (1-a.Beta1)*gi
		ve[i] = a.Beta2*ve[i] + (1-a.Beta2)*gi*gi
		mhat := mo[i] / c1
		vhat := ve[i] / c2
		param[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
	}
}
