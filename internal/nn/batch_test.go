package nn

import (
	"testing"

	"repro/internal/stats"
)

// randSizes draws a random MLP shape: input/output 1..12, 0..3 hidden layers.
func randSizes(r *stats.RNG) []int {
	sizes := []int{r.Intn(12) + 1}
	for h := r.Intn(4); h > 0; h-- {
		sizes = append(sizes, r.Intn(12)+1)
	}
	return append(sizes, r.Intn(12)+1)
}

// TestBatchedKernelDifferential pins the tentpole guarantee of the batched
// kernels: over fuzzed shapes, activations and batch sizes, ForwardBatch and
// BackwardBatch are bit-identical — outputs, parameter gradients AND input
// gradients — to running the per-row Forward/Backward loop in batch-row
// order. Inputs include exact zeros so the zero-coefficient paths (MulVecT's
// skip vs MulMat's blocked adds) are exercised.
func TestBatchedKernelDifferential(t *testing.T) {
	for _, act := range []Activation{ReLU, Tanh, Identity} {
		for seed := uint64(1); seed <= 25; seed++ {
			r := stats.NewRNG(seed*31 + uint64(len(act)))
			sizes := randSizes(r)
			m := NewMLP(sizes, act, r)
			n := r.Intn(17) + 1 // batch rows, covers the 4-blocked and remainder paths

			x := NewMat(n, sizes[0])
			gradOut := NewMat(n, sizes[len(sizes)-1])
			for i := range x.Data {
				if r.Bool(0.15) {
					continue // leave exact zeros in the batch
				}
				x.Data[i] = r.Normal(0, 1)
			}
			for i := range gradOut.Data {
				if r.Bool(0.25) {
					continue // zero gradient rows/elements must also match
				}
				gradOut.Data[i] = r.Normal(0, 1)
			}

			// sequential reference: per-row Forward/Backward in row order
			cache := NewCache(m)
			seqG := NewGrads(m)
			seqOut := NewMat(n, gradOut.Cols)
			seqIn := NewMat(n, sizes[0])
			for row := 0; row < n; row++ {
				out := m.Forward(x.Row(row), cache)
				copy(seqOut.Row(row), out)
				gin := m.Backward(cache, gradOut.Row(row), seqG)
				copy(seqIn.Row(row), gin)
			}

			// batched path, assembled in-place via Input
			bc := NewBatchCache(m, n+3) // capacity above n: reuse must not leak rows
			in := bc.Input(n)
			copy(in.Data[:n*in.Cols], x.Data)
			batchOut := m.ForwardBatch(in, bc)
			batchG := NewGrads(m)
			batchIn := m.BackwardBatch(bc, gradOut, batchG)

			for i := range seqOut.Data {
				if batchOut.Data[i] != seqOut.Data[i] {
					t.Fatalf("act=%s seed=%d sizes=%v n=%d: output[%d] %v != %v",
						act, seed, sizes, n, i, batchOut.Data[i], seqOut.Data[i])
				}
			}
			for i := range seqIn.Data {
				if batchIn.Data[i] != seqIn.Data[i] {
					t.Fatalf("act=%s seed=%d sizes=%v n=%d: input grad[%d] %v != %v",
						act, seed, sizes, n, i, batchIn.Data[i], seqIn.Data[i])
				}
			}
			for l := range seqG.W {
				for i := range seqG.W[l].Data {
					if batchG.W[l].Data[i] != seqG.W[l].Data[i] {
						t.Fatalf("act=%s seed=%d sizes=%v n=%d: dW[%d][%d] %v != %v",
							act, seed, sizes, n, l, i, batchG.W[l].Data[i], seqG.W[l].Data[i])
					}
				}
				for i := range seqG.B[l] {
					if batchG.B[l][i] != seqG.B[l][i] {
						t.Fatalf("act=%s seed=%d sizes=%v n=%d: dB[%d][%d] %v != %v",
							act, seed, sizes, n, l, i, batchG.B[l][i], seqG.B[l][i])
					}
				}
			}
		}
	}
}

// TestBatchedGradSplitInvariant pins the accumulation-order contract that
// lets callers block large batches: accumulating one 13-row BackwardBatch
// into g is bit-identical to accumulating the same rows as 4+4+4+1 blocks.
func TestBatchedGradSplitInvariant(t *testing.T) {
	r := stats.NewRNG(77)
	m := NewMLP([]int{6, 9, 3}, Tanh, r)
	const n = 13
	x := NewMat(n, 6)
	gradOut := NewMat(n, 3)
	for i := range x.Data {
		x.Data[i] = r.Normal(0, 1)
	}
	for i := range gradOut.Data {
		gradOut.Data[i] = r.Normal(0, 1)
	}

	bc := NewBatchCache(m, n)
	whole := NewGrads(m)
	in := bc.Input(n)
	copy(in.Data, x.Data)
	m.ForwardBatch(in, bc)
	m.BackwardBatch(bc, gradOut, whole)

	split := NewGrads(m)
	for lo := 0; lo < n; lo += 4 {
		hi := lo + 4
		if hi > n {
			hi = n
		}
		k := hi - lo
		in := bc.Input(k)
		copy(in.Data[:k*6], x.Data[lo*6:hi*6])
		m.ForwardBatch(in, bc)
		part := &Mat{Rows: k, Cols: 3, Data: gradOut.Data[lo*3 : hi*3]}
		m.BackwardBatch(bc, part, split)
	}
	for l := range whole.W {
		for i := range whole.W[l].Data {
			if whole.W[l].Data[i] != split.W[l].Data[i] {
				t.Fatalf("dW[%d][%d]: whole %v != split %v", l, i, whole.W[l].Data[i], split.W[l].Data[i])
			}
		}
		for i := range whole.B[l] {
			if whole.B[l][i] != split.B[l][i] {
				t.Fatalf("dB[%d][%d]: whole %v != split %v", l, i, whole.B[l][i], split.B[l][i])
			}
		}
	}
}

func TestMaskedSoftmaxIntoMatchesAllocating(t *testing.T) {
	r := stats.NewRNG(5)
	scores := make([]float64, 9)
	mask := make([]bool, 9)
	probs := make([]float64, 9)
	for trial := 0; trial < 50; trial++ {
		any := false
		for i := range scores {
			scores[i] = r.Normal(0, 3)
			mask[i] = r.Bool(0.6)
			any = any || mask[i]
			probs[i] = r.Float64() // stale scratch must be fully overwritten
		}
		if !any {
			mask[0] = true
		}
		want := MaskedSoftmax(scores, mask)
		got := MaskedSoftmaxInto(scores, mask, probs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: probs[%d] %v != %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSoftmaxPolicyGradMatchesComposition pins the fused helper against the
// two-pass SoftmaxLogProbGrad + SoftmaxEntropyGrad composition it replaces,
// on the selectable rows that reach the backward pass.
func TestSoftmaxPolicyGradMatchesComposition(t *testing.T) {
	r := stats.NewRNG(8)
	const n = 7
	scores := make([]float64, n)
	mask := make([]bool, n)
	lg := make([]float64, n)
	eg := make([]float64, n)
	fused := make([]float64, n)
	for trial := 0; trial < 60; trial++ {
		a := -1
		for i := range scores {
			scores[i] = r.Normal(0, 2)
			mask[i] = r.Bool(0.7)
			if mask[i] && a < 0 {
				a = i
			}
		}
		if a < 0 {
			mask[0], a = true, 0
		}
		probs := MaskedSoftmax(scores, mask)
		dlogp := r.Normal(0, 1)
		for _, coef := range []float64{0, 0.01} {
			SoftmaxLogProbGrad(probs, mask, a, lg)
			SoftmaxEntropyGrad(probs, mask, eg)
			SoftmaxPolicyGrad(probs, mask, a, dlogp, coef, fused)
			for i := range probs {
				if !mask[i] {
					continue // masked rows never reach the backward pass
				}
				want := dlogp*lg[i] - coef*eg[i]
				if coef == 0 {
					want = lg[i] * dlogp
				}
				if fused[i] != want {
					t.Fatalf("trial %d coef=%v: grad[%d] %v != %v", trial, coef, i, fused[i], want)
				}
			}
		}
	}
}

// TestForwardBatchNoAllocs guards the batched forward hot path: with the
// cache assembled in place, a ForwardBatch costs zero allocations.
func TestForwardBatchNoAllocs(t *testing.T) {
	r := stats.NewRNG(3)
	m := NewMLP([]int{10, 32, 16, 8, 1}, ReLU, r)
	bc := NewBatchCache(m, 129)
	in := bc.Input(129)
	for i := range in.Data {
		in.Data[i] = r.Float64()
	}
	if avg := testing.AllocsPerRun(100, func() {
		m.ForwardBatch(in, bc)
	}); avg != 0 {
		t.Fatalf("ForwardBatch allocates %v per run, want 0", avg)
	}
}

func TestMaskedSoftmaxIntoNoAllocs(t *testing.T) {
	r := stats.NewRNG(4)
	scores := make([]float64, 129)
	mask := make([]bool, 129)
	probs := make([]float64, 129)
	for i := range scores {
		scores[i] = r.Normal(0, 1)
		mask[i] = i%3 != 0
	}
	if avg := testing.AllocsPerRun(100, func() {
		MaskedSoftmaxInto(scores, mask, probs)
	}); avg != 0 {
		t.Fatalf("MaskedSoftmaxInto allocates %v per run, want 0", avg)
	}
}

func TestBatchCacheRejectsOverCapacity(t *testing.T) {
	r := stats.NewRNG(6)
	m := NewMLP([]int{3, 2}, ReLU, r)
	bc := NewBatchCache(m, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Input beyond capacity did not panic")
		}
	}()
	bc.Input(5)
}
