package nn

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Activation names the supported nonlinearities.
type Activation string

const (
	// ReLU is max(0, x).
	ReLU Activation = "relu"
	// Tanh is the hyperbolic tangent.
	Tanh Activation = "tanh"
	// Identity is the linear activation (used for output layers).
	Identity Activation = "identity"
)

func actForward(a Activation, x float64) float64 {
	switch a {
	case ReLU:
		if x > 0 {
			return x
		}
		return 0
	case Tanh:
		return math.Tanh(x)
	case Identity:
		return x
	}
	panic(fmt.Sprintf("nn: unknown activation %q", a))
}

// actBackward returns d(act)/dx given the pre-activation x and the computed
// activation y.
func actBackward(a Activation, x, y float64) float64 {
	switch a {
	case ReLU:
		if x > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Identity:
		return 1
	}
	panic(fmt.Sprintf("nn: unknown activation %q", a))
}

// MLP is a fully connected feed-forward network. Layer l maps Sizes[l] to
// Sizes[l+1] via W[l]*x + B[l] followed by Act (Identity on the final
// layer). Weights are read-only during Forward/Backward, so one MLP can be
// shared across goroutines that own their own Cache and Grads.
type MLP struct {
	Sizes []int
	Act   Activation
	W     []*Mat      // W[l] is Sizes[l+1] x Sizes[l]
	B     [][]float64 // B[l] has len Sizes[l+1]
}

// NewMLP builds an MLP with the given layer sizes (at least two entries:
// input and output) and hidden activation, initialised with He-uniform
// weights drawn from rng.
func NewMLP(sizes []int, act Activation, rng *stats.RNG) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	for _, s := range sizes {
		if s <= 0 {
			panic("nn: MLP layer sizes must be positive")
		}
	}
	m := &MLP{Sizes: append([]int(nil), sizes...), Act: act}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		w := NewMat(out, in)
		bound := math.Sqrt(6.0 / float64(in))
		for i := range w.Data {
			w.Data[i] = rng.Uniform(-bound, bound)
		}
		m.W = append(m.W, w)
		m.B = append(m.B, make([]float64, out))
	}
	return m
}

// Layers returns the number of weight layers.
func (m *MLP) Layers() int { return len(m.W) }

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.W {
		n += len(m.W[l].Data) + len(m.B[l])
	}
	return n
}

// Clone deep-copies the network.
func (m *MLP) Clone() *MLP {
	c := &MLP{Sizes: append([]int(nil), m.Sizes...), Act: m.Act}
	for l := range m.W {
		c.W = append(c.W, m.W[l].Clone())
		c.B = append(c.B, append([]float64(nil), m.B[l]...))
	}
	return c
}

// Cache stores the per-layer pre-activations and activations of one forward
// pass, enabling an exact backward pass. Each goroutine uses its own Cache.
type Cache struct {
	// X[0] is the input; X[l+1] the activation after layer l.
	X [][]float64
	// Z[l] is the pre-activation of layer l.
	Z [][]float64
}

// NewCache allocates a cache matching the network shape.
func NewCache(m *MLP) *Cache {
	c := &Cache{}
	c.X = append(c.X, make([]float64, m.Sizes[0]))
	for l := 0; l < m.Layers(); l++ {
		c.Z = append(c.Z, make([]float64, m.Sizes[l+1]))
		c.X = append(c.X, make([]float64, m.Sizes[l+1]))
	}
	return c
}

// Forward runs the network on x, recording intermediates in cache, and
// returns the output activation (a view into the cache; copy before reuse).
func (m *MLP) Forward(x []float64, cache *Cache) []float64 {
	if len(x) != m.Sizes[0] {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), m.Sizes[0]))
	}
	copy(cache.X[0], x)
	for l := 0; l < m.Layers(); l++ {
		m.W[l].MulVec(cache.X[l], cache.Z[l])
		act := m.Act
		if l == m.Layers()-1 {
			act = Identity
		}
		for i, z := range cache.Z[l] {
			cache.Z[l][i] = z + m.B[l][i]
			cache.X[l+1][i] = actForward(act, cache.Z[l][i])
		}
	}
	return cache.X[m.Layers()]
}

// Grads accumulates parameter gradients for an MLP.
type Grads struct {
	W []*Mat
	B [][]float64
	// scratch buffers for Backward, sized per layer
	delta [][]float64
}

// NewGrads allocates zeroed gradients matching the network.
func NewGrads(m *MLP) *Grads {
	g := &Grads{}
	for l := range m.W {
		g.W = append(g.W, NewMat(m.W[l].Rows, m.W[l].Cols))
		g.B = append(g.B, make([]float64, len(m.B[l])))
	}
	for l := 0; l <= m.Layers(); l++ {
		g.delta = append(g.delta, make([]float64, m.Sizes[l]))
	}
	return g
}

// Zero clears the accumulated gradients.
func (g *Grads) Zero() {
	for l := range g.W {
		g.W[l].Zero()
		for i := range g.B[l] {
			g.B[l][i] = 0
		}
	}
}

// Add accumulates another gradient set (used to reduce per-worker grads).
func (g *Grads) Add(o *Grads) {
	for l := range g.W {
		g.W[l].AddScaled(o.W[l], 1)
		for i, v := range o.B[l] {
			g.B[l][i] += v
		}
	}
}

// Scale multiplies all gradients by f (e.g. 1/batchSize).
func (g *Grads) Scale(f float64) {
	for l := range g.W {
		for i := range g.W[l].Data {
			g.W[l].Data[i] *= f
		}
		for i := range g.B[l] {
			g.B[l][i] *= f
		}
	}
}

// Backward accumulates dLoss/dParams into g given the cache of the forward
// pass that produced the output and gradOut = dLoss/dOutput. It returns
// dLoss/dInput (a view into g's scratch space; copy before reuse).
func (m *MLP) Backward(cache *Cache, gradOut []float64, g *Grads) []float64 {
	L := m.Layers()
	if len(gradOut) != m.Sizes[L] {
		panic(fmt.Sprintf("nn: gradOut size %d, want %d", len(gradOut), m.Sizes[L]))
	}
	copy(g.delta[L], gradOut)
	for l := L - 1; l >= 0; l-- {
		act := m.Act
		if l == L-1 {
			act = Identity
		}
		// delta through the activation
		d := g.delta[l+1]
		for i := range d {
			d[i] *= actBackward(act, cache.Z[l][i], cache.X[l+1][i])
		}
		// parameter gradients
		g.W[l].AddOuterScaled(d, cache.X[l], 1)
		for i, v := range d {
			g.B[l][i] += v
		}
		// propagate to the previous layer
		m.W[l].MulVecT(d, g.delta[l])
	}
	return g.delta[0]
}
