package nn

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Activation names the supported nonlinearities.
type Activation string

const (
	// ReLU is max(0, x).
	ReLU Activation = "relu"
	// Tanh is the hyperbolic tangent.
	Tanh Activation = "tanh"
	// Identity is the linear activation (used for output layers).
	Identity Activation = "identity"
)

func actForward(a Activation, x float64) float64 {
	switch a {
	case ReLU:
		if x > 0 {
			return x
		}
		return 0
	case Tanh:
		return math.Tanh(x)
	case Identity:
		return x
	}
	panic(fmt.Sprintf("nn: unknown activation %q", a))
}

// actBackward returns d(act)/dx given the pre-activation x and the computed
// activation y.
func actBackward(a Activation, x, y float64) float64 {
	switch a {
	case ReLU:
		if x > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Identity:
		return 1
	}
	panic(fmt.Sprintf("nn: unknown activation %q", a))
}

// MLP is a fully connected feed-forward network. Layer l maps Sizes[l] to
// Sizes[l+1] via W[l]*x + B[l] followed by Act (Identity on the final
// layer). Weights are read-only during Forward/Backward, so one MLP can be
// shared across goroutines that own their own Cache and Grads.
type MLP struct {
	Sizes []int
	Act   Activation
	W     []*Mat      // W[l] is Sizes[l+1] x Sizes[l]
	B     [][]float64 // B[l] has len Sizes[l+1]
}

// NewMLP builds an MLP with the given layer sizes (at least two entries:
// input and output) and hidden activation, initialised with He-uniform
// weights drawn from rng.
func NewMLP(sizes []int, act Activation, rng *stats.RNG) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	for _, s := range sizes {
		if s <= 0 {
			panic("nn: MLP layer sizes must be positive")
		}
	}
	m := &MLP{Sizes: append([]int(nil), sizes...), Act: act}
	for l := 0; l < len(sizes)-1; l++ {
		in, out := sizes[l], sizes[l+1]
		w := NewMat(out, in)
		bound := math.Sqrt(6.0 / float64(in))
		for i := range w.Data {
			w.Data[i] = rng.Uniform(-bound, bound)
		}
		m.W = append(m.W, w)
		m.B = append(m.B, make([]float64, out))
	}
	return m
}

// Layers returns the number of weight layers.
func (m *MLP) Layers() int { return len(m.W) }

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.W {
		n += len(m.W[l].Data) + len(m.B[l])
	}
	return n
}

// Clone deep-copies the network.
func (m *MLP) Clone() *MLP {
	c := &MLP{Sizes: append([]int(nil), m.Sizes...), Act: m.Act}
	for l := range m.W {
		c.W = append(c.W, m.W[l].Clone())
		c.B = append(c.B, append([]float64(nil), m.B[l]...))
	}
	return c
}

// Cache stores the per-layer pre-activations and activations of one forward
// pass, enabling an exact backward pass. Each goroutine uses its own Cache.
type Cache struct {
	// X[0] is the input; X[l+1] the activation after layer l.
	X [][]float64
	// Z[l] is the pre-activation of layer l.
	Z [][]float64
}

// NewCache allocates a cache matching the network shape.
func NewCache(m *MLP) *Cache {
	c := &Cache{}
	c.X = append(c.X, make([]float64, m.Sizes[0]))
	for l := 0; l < m.Layers(); l++ {
		c.Z = append(c.Z, make([]float64, m.Sizes[l+1]))
		c.X = append(c.X, make([]float64, m.Sizes[l+1]))
	}
	return c
}

// Forward runs the network on x, recording intermediates in cache, and
// returns the output activation (a view into the cache; copy before reuse).
func (m *MLP) Forward(x []float64, cache *Cache) []float64 {
	if len(x) != m.Sizes[0] {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), m.Sizes[0]))
	}
	copy(cache.X[0], x)
	for l := 0; l < m.Layers(); l++ {
		m.W[l].MulVec(cache.X[l], cache.Z[l])
		act := m.Act
		if l == m.Layers()-1 {
			act = Identity
		}
		for i, z := range cache.Z[l] {
			cache.Z[l][i] = z + m.B[l][i]
			cache.X[l+1][i] = actForward(act, cache.Z[l][i])
		}
	}
	return cache.X[m.Layers()]
}

// BatchCache is the batched counterpart of Cache: per-layer activation,
// pre-activation and delta matrices with one row per batch sample, allocated
// once at a fixed row capacity and reused across calls (Input shrinks the
// logical row count without reallocating). Each goroutine uses its own
// BatchCache, like Cache.
type BatchCache struct {
	// X[0] is the input batch; X[l+1] the activation batch after layer l.
	X []*Mat
	// Z[l] is the pre-activation batch of layer l.
	Z []*Mat
	// Delta[l] is the backward scratch for dLoss/dX[l].
	Delta []*Mat
	cap   int
}

// NewBatchCache allocates a batch cache for up to maxRows samples. The
// backward Delta matrices are allocated lazily on first BackwardBatch, so
// forward-only consumers (evaluation clones, the rollout scorer) pay half
// the memory.
func NewBatchCache(m *MLP, maxRows int) *BatchCache {
	if maxRows <= 0 {
		panic("nn: BatchCache needs a positive row capacity")
	}
	c := &BatchCache{cap: maxRows}
	for l := 0; l <= m.Layers(); l++ {
		c.X = append(c.X, NewMat(maxRows, m.Sizes[l]))
		if l < m.Layers() {
			c.Z = append(c.Z, NewMat(maxRows, m.Sizes[l+1]))
		}
	}
	return c
}

// Cap returns the row capacity.
func (c *BatchCache) Cap() int { return c.cap }

// Input sets the logical batch size to n rows and returns the input matrix
// for the caller to fill, so batches can be assembled without an extra copy
// in ForwardBatch.
func (c *BatchCache) Input(n int) *Mat {
	if n < 0 || n > c.cap {
		panic(fmt.Sprintf("nn: batch size %d outside cache capacity %d", n, c.cap))
	}
	for l := range c.X {
		c.X[l].Rows = n
		if l < len(c.Z) {
			c.Z[l].Rows = n
		}
	}
	return c.X[0]
}

// ensureDelta allocates the backward scratch on first use and aligns its
// logical row count with the current batch.
func (c *BatchCache) ensureDelta(m *MLP, n int) {
	if c.Delta == nil {
		for l := 0; l <= m.Layers(); l++ {
			c.Delta = append(c.Delta, NewMat(c.cap, m.Sizes[l]))
		}
	}
	for l := range c.Delta {
		c.Delta[l].Rows = n
	}
}

// ForwardBatch runs the network on every row of x with one GEMM per layer,
// recording intermediates in cache, and returns the output batch (a view
// into the cache; copy before reuse). Row r of the result is bit-identical
// to Forward(x.Row(r)) — see MulMatT's contract. Pass cache.Input(n) itself
// (after filling it) to skip the input copy.
func (m *MLP) ForwardBatch(x *Mat, cache *BatchCache) *Mat {
	if x.Cols != m.Sizes[0] {
		panic(fmt.Sprintf("nn: batch input width %d, want %d", x.Cols, m.Sizes[0]))
	}
	if x != cache.X[0] {
		in := cache.Input(x.Rows)
		copy(in.Data[:x.Rows*x.Cols], x.Data[:x.Rows*x.Cols])
	} else if x.Rows != cache.Z[0].Rows {
		cache.Input(x.Rows) // realign layer matrices with a pre-filled input
	}
	L := m.Layers()
	for l := 0; l < L; l++ {
		m.W[l].MulMatT(cache.X[l], cache.Z[l])
		act := m.Act
		if l == L-1 {
			act = Identity
		}
		b := m.B[l]
		z, xo := cache.Z[l], cache.X[l+1]
		// activation hoisted out of the element loop (actForward switches on
		// the activation name; per-element that dominates small layers)
		switch act {
		case ReLU:
			for r := 0; r < z.Rows; r++ {
				zr, xr := z.Row(r), xo.Row(r)
				for i, v := range zr {
					zv := v + b[i]
					zr[i] = zv
					if zv > 0 {
						xr[i] = zv
					} else {
						xr[i] = 0
					}
				}
			}
		case Identity:
			for r := 0; r < z.Rows; r++ {
				zr, xr := z.Row(r), xo.Row(r)
				for i, v := range zr {
					zv := v + b[i]
					zr[i] = zv
					xr[i] = zv
				}
			}
		default:
			for r := 0; r < z.Rows; r++ {
				zr, xr := z.Row(r), xo.Row(r)
				for i, v := range zr {
					zr[i] = v + b[i]
					xr[i] = actForward(act, zr[i])
				}
			}
		}
	}
	return cache.X[L]
}

// ScoreMasked scores every mask-selected row with one batched forward of a
// single-output network and returns the masked softmax over all rows plus
// the number of gathered rows. This is the shared per-decision scoring
// protocol of the RL agent and the PPO policy update: gather the selectable
// rows into bc (whose forward cache the caller may then reuse for a
// BackwardBatch aligned with the gather order), scatter output 0 of each
// row into scores (masked rows score 0), softmax into probs. gather, scores
// and probs must have len(rows); the result is bit-identical to a per-row
// Forward loop over the selectable rows.
func (m *MLP) ScoreMasked(rows [][]float64, mask []bool, bc *BatchCache,
	gather []int, scores, probs []float64) ([]float64, int) {
	k := 0
	for i := range rows {
		if mask[i] {
			gather[k] = i
			k++
		}
	}
	in := bc.Input(k)
	for j := 0; j < k; j++ {
		copy(in.Row(j), rows[gather[j]])
	}
	out := m.ForwardBatch(in, bc)
	for i := range scores {
		scores[i] = 0
	}
	for j := 0; j < k; j++ {
		scores[gather[j]] = out.At(j, 0)
	}
	return MaskedSoftmaxInto(scores, mask, probs), k
}

// BackwardBatch accumulates dLoss/dParams into g for a whole batch, given
// the cache of the ForwardBatch that produced the outputs and
// gradOut = dLoss/dOutput (one row per sample). It returns dLoss/dInput (a
// view into the cache; copy before reuse).
//
// Per element of g the batch rows accumulate in ascending order directly
// into the gradient storage, so the result is bit-identical to calling
// Backward once per row in order — at any batch split (see DESIGN.md §8).
func (m *MLP) BackwardBatch(cache *BatchCache, gradOut *Mat, g *Grads) *Mat {
	L := m.Layers()
	n := cache.X[0].Rows
	if gradOut.Cols != m.Sizes[L] || gradOut.Rows != n {
		panic(fmt.Sprintf("nn: batch gradOut %dx%d, want %dx%d", gradOut.Rows, gradOut.Cols, n, m.Sizes[L]))
	}
	cache.ensureDelta(m, n)
	copy(cache.Delta[L].Data[:n*gradOut.Cols], gradOut.Data[:n*gradOut.Cols])
	for l := L - 1; l >= 0; l-- {
		act := m.Act
		if l == L-1 {
			act = Identity
		}
		// delta through the activation (hoisted like ForwardBatch)
		d, z, xo := cache.Delta[l+1], cache.Z[l], cache.X[l+1]
		switch act {
		case ReLU:
			for r := 0; r < n; r++ {
				dr, zr := d.Row(r), z.Row(r)
				for i := range dr {
					if zr[i] <= 0 {
						dr[i] = 0
					}
				}
			}
		case Identity:
			// derivative 1: delta unchanged
		default:
			for r := 0; r < n; r++ {
				dr, zr, xr := d.Row(r), z.Row(r), xo.Row(r)
				for i := range dr {
					dr[i] *= actBackward(act, zr[i], xr[i])
				}
			}
		}
		// parameter gradients, batch rows in ascending order
		g.W[l].AddMatOuterScaled(d, cache.X[l], 1)
		gb := g.B[l]
		for r := 0; r < n; r++ {
			for i, v := range d.Row(r) {
				gb[i] += v
			}
		}
		// propagate to the previous layer
		m.W[l].MulMat(d, cache.Delta[l])
	}
	return cache.Delta[0]
}

// Grads accumulates parameter gradients for an MLP.
type Grads struct {
	W []*Mat
	B [][]float64
	// scratch buffers for Backward, sized per layer
	delta [][]float64
}

// NewGrads allocates zeroed gradients matching the network.
func NewGrads(m *MLP) *Grads {
	g := &Grads{}
	for l := range m.W {
		g.W = append(g.W, NewMat(m.W[l].Rows, m.W[l].Cols))
		g.B = append(g.B, make([]float64, len(m.B[l])))
	}
	for l := 0; l <= m.Layers(); l++ {
		g.delta = append(g.delta, make([]float64, m.Sizes[l]))
	}
	return g
}

// Zero clears the accumulated gradients.
func (g *Grads) Zero() {
	for l := range g.W {
		g.W[l].Zero()
		for i := range g.B[l] {
			g.B[l][i] = 0
		}
	}
}

// Add accumulates another gradient set (used to reduce per-worker grads).
func (g *Grads) Add(o *Grads) {
	for l := range g.W {
		g.W[l].AddScaled(o.W[l], 1)
		for i, v := range o.B[l] {
			g.B[l][i] += v
		}
	}
}

// Scale multiplies all gradients by f (e.g. 1/batchSize).
func (g *Grads) Scale(f float64) {
	for l := range g.W {
		for i := range g.W[l].Data {
			g.W[l].Data[i] *= f
		}
		for i := range g.B[l] {
			g.B[l][i] *= f
		}
	}
}

// Backward accumulates dLoss/dParams into g given the cache of the forward
// pass that produced the output and gradOut = dLoss/dOutput. It returns
// dLoss/dInput (a view into g's scratch space; copy before reuse).
func (m *MLP) Backward(cache *Cache, gradOut []float64, g *Grads) []float64 {
	L := m.Layers()
	if len(gradOut) != m.Sizes[L] {
		panic(fmt.Sprintf("nn: gradOut size %d, want %d", len(gradOut), m.Sizes[L]))
	}
	copy(g.delta[L], gradOut)
	for l := L - 1; l >= 0; l-- {
		act := m.Act
		if l == L-1 {
			act = Identity
		}
		// delta through the activation
		d := g.delta[l+1]
		for i := range d {
			d[i] *= actBackward(act, cache.Z[l][i], cache.X[l+1][i])
		}
		// parameter gradients
		g.W[l].AddOuterScaled(d, cache.X[l], 1)
		for i, v := range d {
			g.B[l][i] += v
		}
		// propagate to the previous layer
		m.W[l].MulVecT(d, g.delta[l])
	}
	return g.delta[0]
}
