package nn

import (
	"testing"

	"repro/internal/stats"
)

// BenchmarkPolicyBatchVsRow measures scoring one full backfill decision at
// the paper-scale observation shape — 129 candidate rows of 10 features
// through the 32-16-8 kernel network — the per-row way (one Forward per
// candidate, the pre-batching hot path of Agent.distribution and
// ppo.policyStep) versus one ForwardBatch. Outputs are bit-identical
// (TestBatchedKernelDifferential); the ratio is the decision-scoring speedup.
func BenchmarkPolicyBatchVsRow(b *testing.B) {
	const rows, feat = 129, 10
	rng := stats.NewRNG(1)
	m := NewMLP([]int{feat, 32, 16, 8, 1}, ReLU, rng)
	x := NewMat(rows, feat)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	scores := make([]float64, rows)

	b.Run("row", func(b *testing.B) {
		cache := NewCache(m)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := 0; r < rows; r++ {
				scores[r] = m.Forward(x.Row(r), cache)[0]
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		bc := NewBatchCache(m, rows)
		in := bc.Input(rows)
		copy(in.Data, x.Data)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := m.ForwardBatch(in, bc)
			for r := 0; r < rows; r++ {
				scores[r] = out.At(r, 0)
			}
		}
	})
}

// BenchmarkBatchBackward measures the batched backward at the same shape
// against the per-row loop, including the per-row cache the sequential path
// has to keep per candidate.
func BenchmarkBatchBackward(b *testing.B) {
	const rows, feat = 129, 10
	rng := stats.NewRNG(2)
	m := NewMLP([]int{feat, 32, 16, 8, 1}, ReLU, rng)
	x := NewMat(rows, feat)
	gradOut := NewMat(rows, 1)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	for i := range gradOut.Data {
		gradOut.Data[i] = rng.Normal(0, 1)
	}

	b.Run("row", func(b *testing.B) {
		caches := make([]*Cache, rows)
		for i := range caches {
			caches[i] = NewCache(m)
		}
		g := NewGrads(m)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Zero()
			for r := 0; r < rows; r++ {
				m.Forward(x.Row(r), caches[r])
			}
			for r := 0; r < rows; r++ {
				m.Backward(caches[r], gradOut.Row(r), g)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		bc := NewBatchCache(m, rows)
		in := bc.Input(rows)
		copy(in.Data, x.Data)
		g := NewGrads(m)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Zero()
			m.ForwardBatch(in, bc)
			m.BackwardBatch(bc, gradOut, g)
		}
	})
}
