// Package pool provides the bounded, weighted worker pool shared by the
// experiments layer (DESIGN.md §6.1): every table cell, figure point,
// model-training job and eval sequence of a `rlbf-exp` invocation is
// submitted here, so total machine pressure is capped regardless of how many
// experiments fan out concurrently.
//
// Weights express internal parallelism: a plain simulation cell weighs 1,
// while a training cell that itself runs cfg.Workers rollout goroutines
// acquires cfg.Workers tokens up front, so the pool never oversubscribes the
// machine. Grants are strictly FIFO — a heavy request at the head of the
// line is never starved by a stream of light ones — which also gives the
// deadlock-freedom argument its shape: a task acquires its full weight
// before it starts and never acquires more while running.
package pool

import (
	"sync"
	"sync/atomic"
)

// Pool is a weighted counting semaphore with FIFO grant order. The zero
// value is not usable; construct with New.
type Pool struct {
	mu      sync.Mutex
	cap     int
	avail   int
	waiters []waiter
	aborted atomic.Bool
}

type waiter struct {
	n     int
	ready chan struct{}
}

// New returns a pool with the given token capacity (at least 1).
func New(capacity int) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool{cap: capacity, avail: capacity}
}

// Capacity returns the pool's total token count.
func (p *Pool) Capacity() int {
	return p.cap
}

// Abort marks the pool as aborted. The mark is advisory and sticky: the pool
// keeps granting tokens (in-flight work finishes normally), but cooperative
// producers consult Aborted before starting new work, so one failure stops
// every fan-out sharing the pool instead of only its own.
func (p *Pool) Abort() {
	p.aborted.Store(true)
}

// Aborted reports whether Abort has been called.
func (p *Pool) Aborted() bool {
	return p.aborted.Load()
}

// clamp bounds a requested weight to [1, capacity], so a task asking for
// more parallelism than the pool owns degrades to "the whole pool" instead
// of deadlocking.
func (p *Pool) clamp(n int) int {
	if n < 1 {
		return 1
	}
	if n > p.cap {
		return p.cap
	}
	return n
}

// Acquire blocks until n tokens (clamped to [1, capacity]) are granted and
// returns the granted weight, which must be passed back to Release. Grants
// are FIFO: callers are served in arrival order even when a later, lighter
// request could be satisfied immediately.
func (p *Pool) Acquire(n int) int {
	n = p.clamp(n)
	p.mu.Lock()
	if len(p.waiters) == 0 && p.avail >= n {
		p.avail -= n
		p.mu.Unlock()
		return n
	}
	w := waiter{n: n, ready: make(chan struct{})}
	p.waiters = append(p.waiters, w)
	p.mu.Unlock()
	<-w.ready
	return n
}

// Release returns n tokens (the value Acquire granted) and wakes waiters in
// FIFO order while their requests fit.
func (p *Pool) Release(n int) {
	n = p.clamp(n)
	p.mu.Lock()
	p.avail += n
	if p.avail > p.cap {
		p.avail = p.cap
	}
	for len(p.waiters) > 0 && p.avail >= p.waiters[0].n {
		w := p.waiters[0]
		p.waiters = p.waiters[1:]
		p.avail -= w.n
		close(w.ready)
	}
	p.mu.Unlock()
}

// Group tracks a batch of tasks submitted to one pool, propagating the first
// error. Use one Group per fan-out and Wait before reading results.
type Group struct {
	p  *Pool
	wg sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewGroup returns an empty task group backed by the pool.
func (p *Pool) NewGroup() *Group {
	return &Group{p: p}
}

// Go submits fn as one task of the given weight. The call blocks until the
// pool grants the weight (bounded submit — a producer cannot race ahead of
// the machine), then runs fn on its own goroutine and releases the weight
// when fn returns. The first non-nil error is retained for Wait; tasks that
// need deterministic error selection should record errors into indexed slots
// instead and return nil.
func (g *Group) Go(weight int, fn func() error) {
	granted := g.p.Acquire(weight)
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer g.p.Release(granted)
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every submitted task has finished and returns the first
// recorded error.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
