package pool

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCapacityClamped(t *testing.T) {
	if got := New(0).Capacity(); got != 1 {
		t.Fatalf("New(0) capacity %d, want 1", got)
	}
	if got := New(-3).Capacity(); got != 1 {
		t.Fatalf("New(-3) capacity %d, want 1", got)
	}
	if got := New(7).Capacity(); got != 7 {
		t.Fatalf("New(7) capacity %d, want 7", got)
	}
}

func TestAcquireClampsOversizedRequests(t *testing.T) {
	p := New(2)
	if got := p.Acquire(100); got != 2 {
		t.Fatalf("oversized acquire granted %d, want 2 (clamped)", got)
	}
	p.Release(2)
	if got := p.Acquire(0); got != 1 {
		t.Fatalf("zero-weight acquire granted %d, want 1", got)
	}
	p.Release(1)
}

// The pool must never let the concurrently-held weight exceed its capacity.
func TestBoundedConcurrency(t *testing.T) {
	const capacity = 3
	p := New(capacity)
	g := p.NewGroup()
	var cur, max int64
	for i := 0; i < 50; i++ {
		w := i%capacity + 1
		g.Go(w, func() error {
			n := atomic.AddInt64(&cur, int64(w))
			for {
				m := atomic.LoadInt64(&max)
				if n <= m || atomic.CompareAndSwapInt64(&max, m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&cur, -int64(w))
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if max > capacity {
		t.Fatalf("held weight peaked at %d > capacity %d", max, capacity)
	}
}

// waitForWaiters blocks until the pool's FIFO queue holds n waiters, so the
// test synchronizes on observed state instead of timing assumptions.
func waitForWaiters(t *testing.T, p *Pool, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		p.mu.Lock()
		got := len(p.waiters)
		p.mu.Unlock()
		if got == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never reached %d waiters (have %d)", n, got)
		}
		time.Sleep(time.Millisecond)
	}
}

// A heavy task queued behind light ones must not be starved: grants are
// FIFO, so once the heavy request is at the head, lighter late arrivals wait
// behind it.
func TestFIFOPreventsStarvation(t *testing.T) {
	p := New(2)
	first := p.Acquire(1) // hold one token
	heavyRan := make(chan struct{})
	lightRan := make(chan struct{})
	go func() {
		w := p.Acquire(2) // needs the whole pool; must queue
		close(heavyRan)
		p.Release(w)
	}()
	waitForWaiters(t, p, 1) // the heavy request is enqueued at the head
	go func() {
		w := p.Acquire(1)
		close(lightRan)
		p.Release(w)
	}()
	// A token is free, but FIFO means the light request must queue behind
	// the heavy one rather than being granted immediately.
	waitForWaiters(t, p, 2)
	select {
	case <-heavyRan:
		t.Fatal("heavy task ran while a token was still held")
	case <-lightRan:
		t.Fatal("light task jumped the FIFO queue past the heavy waiter")
	default:
	}
	p.Release(first)
	<-heavyRan
	<-lightRan
}

func TestGroupPropagatesFirstError(t *testing.T) {
	p := New(4)
	g := p.NewGroup()
	boom := errors.New("boom")
	for i := 0; i < 10; i++ {
		i := i
		g.Go(1, func() error {
			if i == 3 {
				return boom
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait() = %v, want %v", err, boom)
	}
}

// Bounded submit: with capacity 1, Go must not return before the previous
// task released its token, so a submitting loop cannot race ahead of the
// machine.
func TestSubmitIsBounded(t *testing.T) {
	p := New(1)
	g := p.NewGroup()
	var running int64
	for i := 0; i < 20; i++ {
		g.Go(1, func() error {
			if n := atomic.AddInt64(&running, 1); n != 1 {
				t.Errorf("%d tasks running concurrently on a capacity-1 pool", n)
			}
			atomic.AddInt64(&running, -1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
}

// Stress the semaphore under the race detector: many groups, mixed weights,
// shared pool.
func TestConcurrentGroupsRace(t *testing.T) {
	p := New(4)
	var wg sync.WaitGroup
	var total int64
	for gi := 0; gi < 8; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			g := p.NewGroup()
			for i := 0; i < 25; i++ {
				w := (gi+i)%3 + 1
				g.Go(w, func() error {
					atomic.AddInt64(&total, 1)
					return nil
				})
			}
			if err := g.Wait(); err != nil {
				t.Error(err)
			}
		}(gi)
	}
	wg.Wait()
	if total != 8*25 {
		t.Fatalf("ran %d tasks, want %d", total, 8*25)
	}
}

// Abort is advisory and sticky: tokens keep flowing (in-flight work can
// finish), but the flag stays set for cooperative producers to consult.
func TestAbortIsStickyAndNonBlocking(t *testing.T) {
	p := New(2)
	if p.Aborted() {
		t.Fatal("fresh pool reports aborted")
	}
	p.Abort()
	p.Abort() // idempotent
	if !p.Aborted() {
		t.Fatal("Abort did not stick")
	}
	w := p.Acquire(2) // an aborted pool still grants tokens
	p.Release(w)
}
