// Quickstart: generate a workload, schedule it under FCFS with EASY
// backfilling, and print the scheduling metrics — the minimal end-to-end use
// of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/backfill"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// 1. A 2,000-job surrogate of the SDSC-SP2 workload (128 processors).
	workload := trace.SyntheticSDSCSP2(2000, 42)
	fmt.Println("workload:", trace.ComputeStats(workload))

	// 2. Schedule it three ways: no backfilling, EASY on user request times,
	//    EASY on perfect runtime predictions.
	configs := []struct {
		name string
		bf   backfill.Backfiller
	}{
		{"FCFS (no backfilling)", nil},
		{"FCFS + EASY", backfill.NewEASY(backfill.RequestTime{})},
		{"FCFS + EASY-AR", backfill.NewEASY(backfill.ActualRuntime{})},
	}
	for _, c := range configs {
		res, err := sim.Run(workload.Clone(), sim.Config{Policy: sched.FCFS{}, Backfiller: c.bf})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %s\n", c.name, res.Summary)
	}

	// 3. Per-job detail for the first few jobs of the EASY run.
	res, err := sim.Run(workload.Clone(), sim.Config{
		Policy:     sched.FCFS{},
		Backfiller: backfill.NewEASY(backfill.RequestTime{}),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfirst scheduled jobs (EASY):")
	for _, r := range res.Records[:8] {
		fmt.Printf("  job %4d: submit %7d  start %7d  wait %6d  procs %3d  bsld %.2f\n",
			r.Job.ID, r.Job.Submit, r.Start, r.Wait(), r.Job.Procs, r.BoundedSlowdown())
	}
}
