// Comparepolicies runs every Table 3 base policy against every backfilling
// strategy on all four of the paper's workloads — a compact scheduler
// shoot-out built on the public simulation API.
package main

import (
	"fmt"
	"log"

	"repro/internal/backfill"
	"repro/internal/lublin"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	workloads := []*trace.Trace{
		trace.SyntheticSDSCSP2(2000, 5),
		trace.SyntheticHPC2N(2000, 5),
		lublin.Generate1(2000, 5),
		lublin.Generate2(2000, 5),
	}
	for _, w := range workloads {
		fmt.Println(trace.ComputeStats(w))
	}
	fmt.Println()

	type strat struct {
		name string
		mk   func(tr *trace.Trace) backfill.Backfiller
	}
	strategies := []strat{
		{"none", func(*trace.Trace) backfill.Backfiller { return nil }},
		{"EASY", func(tr *trace.Trace) backfill.Backfiller {
			// Lublin traces have no user estimates: request == actual.
			return backfill.NewEASY(backfill.RequestTime{})
		}},
		{"EASY-AR", func(*trace.Trace) backfill.Backfiller {
			return backfill.NewEASY(backfill.ActualRuntime{})
		}},
		{"CONS", func(*trace.Trace) backfill.Backfiller {
			return backfill.NewConservative(backfill.RequestTime{})
		}},
	}

	fmt.Printf("%-10s %-6s", "trace", "policy")
	for _, s := range strategies {
		fmt.Printf(" %10s", s.name)
	}
	fmt.Println("   (mean bounded slowdown; lower is better)")

	for _, w := range workloads {
		for _, p := range sched.All() {
			fmt.Printf("%-10s %-6s", w.Name, p.Name())
			for _, s := range strategies {
				res, err := sim.Run(w.Clone(), sim.Config{Policy: p, Backfiller: s.mk(w)})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(" %10.2f", res.Summary.MeanBSLD)
			}
			fmt.Println()
		}
	}
}
