// Trainrl trains an RLBackfilling agent end-to-end on a small workload and
// compares it against the EASY baselines — a miniature of the paper's
// Table 4 experiment that finishes in about a minute.
package main

import (
	"fmt"
	"log"

	"repro/internal/backfill"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	workload := trace.SyntheticSDSCSP2(3000, 11)
	fmt.Println("workload:", trace.ComputeStats(workload))

	// Scaled-down training (identical code path to the paper-scale run; see
	// DESIGN.md). The reward per §3.4 is the bsld improvement over FCFS with
	// SJF-ordered EASY backfilling.
	cfg := core.QuickTrainConfig()
	cfg.Seed = 11
	trainer, err := core.NewTrainer(workload, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraining: %d trajectories x %d jobs per epoch, MaxObs=%d\n",
		cfg.TrajPerEpoch, cfg.EpisodeLen, cfg.Obs.MaxObs)
	_, err = trainer.Train(6, func(st core.EpochStats) {
		fmt.Printf("  epoch %d: bsld=%7.2f baseline=%7.2f reward=%+.3f decisions=%d violations=%d\n",
			st.Epoch, st.MeanBSLD, st.BaselineBSLD, st.MeanReward, st.Steps, st.Violations)
	})
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate on longer, unseen sequences (the paper's §4.3 protocol).
	eval := core.EvalConfig{Sequences: 5, SeqLen: 512, Seed: 99}
	fmt.Printf("\nevaluation: %d sequences x %d jobs, FCFS base policy\n", eval.Sequences, eval.SeqLen)

	easy, _, err := core.EvaluateStrategy(workload, sched.FCFS{}, backfill.NewEASY(backfill.RequestTime{}), eval)
	if err != nil {
		log.Fatal(err)
	}
	easyAR, _, err := core.EvaluateStrategy(workload, sched.FCFS{}, backfill.NewEASY(backfill.ActualRuntime{}), eval)
	if err != nil {
		log.Fatal(err)
	}
	rl, _, err := core.EvaluateAgent(trainer.Agent(), workload, sched.FCFS{}, eval)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("  FCFS+EASY    bsld %7.2f\n", easy)
	fmt.Printf("  FCFS+EASY-AR bsld %7.2f\n", easyAR)
	fmt.Printf("  FCFS+RLBF    bsld %7.2f (%.0f%% vs EASY)\n", rl, 100*(easy-rl)/easy)

	// Persist the model for rlbf-eval / Table 5-style transfer.
	model := core.ExportModel(trainer.Agent(), "FCFS", workload.Name, 6)
	if err := core.SaveModelFile("rlbf-quickstart-model.json", model); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsaved model to rlbf-quickstart-model.json")
}
