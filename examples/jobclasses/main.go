// Jobclasses shows which kinds of jobs backfilling helps: it schedules the
// same workload with and without EASY backfilling and breaks the bounded
// slowdown down by the classic short/long x narrow/wide quadrants, alongside
// a utilization timeline from the simulator probe.
package main

import (
	"fmt"
	"log"

	"repro/internal/backfill"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	workload := trace.SyntheticSDSCSP2(3000, 21)
	fmt.Println(trace.Analyze(workload))

	run := func(name string, bf backfill.Backfiller) {
		probe := &sim.TimelineProbe{}
		res, err := sim.Run(workload.Clone(), sim.Config{
			Policy:     sched.FCFS{},
			Backfiller: bf,
			Probe:      probe,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", name)
		fmt.Println(res.Summary)
		fmt.Printf("util |%s|\n", probe.Sparkline(64))
		fmt.Print(metrics.ComputeBreakdown(res.Records))
		fmt.Println()
	}

	run("FCFS without backfilling", nil)
	run("FCFS + EASY", backfill.NewEASY(backfill.RequestTime{}))
	run("FCFS + conservative", backfill.NewConservative(backfill.RequestTime{}))
}
