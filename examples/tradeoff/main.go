// Tradeoff reproduces the paper's motivating example (Figure 2 and §1): more
// accurate runtime predictions tighten the head job's reservation — letting
// it start earlier — but shrink the backfilling area, so overall performance
// is NOT monotone in prediction accuracy.
//
// Part 1 replays the exact J0/J1 micro-scenario from Figure 2 and shows the
// reservation and backfill window under each estimator. Part 2 sweeps
// prediction noise on a realistic workload (a miniature Figure 1).
package main

import (
	"fmt"
	"log"

	"repro/internal/backfill"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	part1()
	part2()
}

// microState adapts a hand-built scenario to the backfill.State interface.
type microState struct {
	now     int64
	free    int
	total   int
	running []backfill.Running
}

func (m *microState) Now() int64                  { return m.now }
func (m *microState) FreeProcs() int              { return m.free }
func (m *microState) TotalProcs() int             { return m.total }
func (m *microState) Running() []backfill.Running { return m.running }
func (m *microState) StartJob(*trace.Job)         { panic("read-only scenario") }

func part1() {
	fmt.Println("== Figure 2 micro-scenario ==")
	// J0 runs on the whole machine: requested 100s, actually finishes at 60s.
	j0 := &trace.Job{ID: 0, Submit: 0, Runtime: 60, Request: 100, Procs: 8}
	// J1 (the selected job / rjob) waits for the full machine.
	j1 := &trace.Job{ID: 1, Submit: 5, Runtime: 50, Request: 50, Procs: 8}
	st := &microState{now: 10, free: 0, total: 8,
		running: []backfill.Running{{Job: j0, Start: 0}}}

	for _, est := range []backfill.Estimator{
		backfill.RequestTime{},              // coarse upper bound
		backfill.Noisy{Level: 0.4, Seed: 9}, // imperfect prediction
		backfill.ActualRuntime{},            // perfect prediction
	} {
		res := backfill.ComputeReservation(st, j1, est)
		window := res.Shadow - st.Now()
		fmt.Printf("  estimator %-8s J0 predicted end %3d -> J1 reservation %3d, backfill window %3ds\n",
			est.Name(), st.Running()[0].Start+est.Estimate(j0), res.Shadow, window)
	}
	fmt.Println("  -> better predictions move J1's reservation earlier but shrink the window")
	fmt.Println("     a backfill candidate must fit into (Figure 2's 'Backfilling Area').")
	fmt.Println()
}

func part2() {
	fmt.Println("== prediction-accuracy sweep on SDSC-SP2 (miniature Figure 1) ==")
	workload := trace.SyntheticSDSCSP2(3000, 7)
	type point struct {
		name string
		est  backfill.Estimator
	}
	points := []point{
		{"AR (perfect)", backfill.ActualRuntime{}},
		{"+10% noise", backfill.Noisy{Level: 0.1, Seed: 7}},
		{"+40% noise", backfill.Noisy{Level: 0.4, Seed: 7}},
		{"+100% noise", backfill.Noisy{Level: 1.0, Seed: 7}},
		{"request time", backfill.RequestTime{}},
	}
	for _, pol := range []sched.Policy{sched.FCFS{}, sched.SJF{}} {
		fmt.Printf("  base policy %s:\n", pol.Name())
		best, bestName := -1.0, ""
		for _, p := range points {
			res, err := sim.Run(workload.Clone(), sim.Config{Policy: pol, Backfiller: backfill.NewEASY(p.est)})
			if err != nil {
				log.Fatal(err)
			}
			b := res.Summary.MeanBSLD
			fmt.Printf("    %-14s bsld %7.2f\n", p.name, b)
			if best < 0 || b < best {
				best, bestName = b, p.name
			}
		}
		fmt.Printf("    -> best: %s (perfect prediction is not always optimal)\n", bestName)
	}
}
