// Package repro holds the benchmark harness that regenerates every table and
// figure of the paper (see DESIGN.md's per-experiment index). Each benchmark
// runs the corresponding experiment once per iteration at the scale selected
// by RLBF_BENCH_SCALE (tiny by default so `go test -bench=.` finishes in
// minutes; set RLBF_BENCH_SCALE=quick or =paper to approach the paper's
// dimensions — see EXPERIMENTS.md for recorded outputs).
package repro

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"repro/internal/backfill"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eventq"
	"repro/internal/experiments"
	"repro/internal/lublin"
	"repro/internal/nn"
	"repro/internal/ppo"
	"repro/internal/sched"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func benchScale(b *testing.B) experiments.Scale {
	b.Helper()
	name := os.Getenv("RLBF_BENCH_SCALE")
	if name == "" {
		name = "tiny"
	}
	sc, ok := experiments.ByName(name)
	if !ok {
		b.Fatalf("unknown RLBF_BENCH_SCALE %q", name)
	}
	return sc
}

// BenchmarkFigure1 regenerates Figure 1 (bsld vs prediction accuracy for
// FCFS/SJF/WFP3/F1 with EASY backfilling on SDSC-SP2).
func BenchmarkFigure1(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Figure1(sc, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (workload characteristics of the four
// traces, generated vs the paper's values).
func BenchmarkTable2(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		tbl := experiments.Table2(sc)
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4 (RLBackfilling training curves on
// the four traces with the FCFS base policy).
func BenchmarkFigure4(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Figure4(sc, experiments.NewZoo(), nil, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkTable4 regenerates Table 4 (bsld of FCFS/SJF x {EASY, EASY-AR,
// RLBF} plus WFP3/F1 references on the four traces).
func BenchmarkTable4(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Table4(sc, experiments.NewZoo(), nil, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkTable5 regenerates Table 5 (cross-trace generality matrix).
func BenchmarkTable5(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Table5(sc, experiments.NewZoo(), nil, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkAblationSkip measures the skip-action design choice.
func BenchmarkAblationSkip(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.AblationSkip(sc, nil, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkAblationPenalty sweeps the reservation-violation penalty.
func BenchmarkAblationPenalty(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.AblationPenalty(sc, nil, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkAblationObs sweeps MAX_OBSV_SIZE.
func BenchmarkAblationObs(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.AblationObs(sc, nil, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkConservative compares no backfilling, EASY and conservative
// backfilling (related-work baseline).
func BenchmarkConservative(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.ConservativeCompare(sc, nil, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkRunManyTiny measures the experiments layer end to end: the full
// `rlbf-exp -exp all` set at tiny scale, sequentially (Workers=1) vs fanned
// across the shared worker pool (Workers=GOMAXPROCS). The pooled/seq ratio
// is the cell runner's wall-clock win; outputs are byte-identical either way
// (TestRunManyDeterministicAcrossWorkers).
func BenchmarkRunManyTiny(b *testing.B) {
	sc, ok := experiments.ByName("tiny")
	if !ok {
		b.Fatal("tiny scale missing")
	}
	run := func(b *testing.B, workers int) {
		b.Helper()
		sc := sc
		sc.Workers = workers
		for i := 0; i < b.N; i++ {
			if _, err := experiments.RunMany([]string{"all"}, sc, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("seq", func(b *testing.B) { run(b, 1) })
	b.Run("pooled", func(b *testing.B) { run(b, runtime.GOMAXPROCS(0)) })
}

// BenchmarkShardedReplay measures the sharded trace replayer on a ~10K-job
// synthetic SDSC-SP2 workload at the load level the differential test proves
// byte-exact for this overlap: one full replay per iteration, sequentially
// vs split into 2 and 4 windows. On one core the sharded variants pay the
// overlap tax (each flank re-simulates Overlap jobs); with k cores the
// windows replay concurrently and the wall clock drops toward
// (Window+2*Overlap)/(k*Window) of sequential — the CI bench job records
// both via -cpu 1,4 (EXPERIMENTS.md).
func BenchmarkShardedReplay(b *testing.B) {
	tr := trace.ScaleLoad(trace.SyntheticSDSCSP2(10000, 1), 0.5)
	mk := func() backfill.Backfiller { return backfill.NewEASY(backfill.RequestTime{}) }
	run := func(b *testing.B, cfg shard.Config) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := shard.ReplayWith(tr, sched.FCFS{}, mk, cfg, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("seq", func(b *testing.B) { run(b, shard.Config{}) })
	b.Run("shards-2", func(b *testing.B) { run(b, shard.Config{Window: 5000, Overlap: 512, MinJobs: 1}) })
	b.Run("shards-4", func(b *testing.B) { run(b, shard.Config{Window: 2500, Overlap: 512, MinJobs: 1}) })
}

// ---- micro-benchmarks for the substrates ----

// BenchmarkSimulatorEASY measures raw simulator throughput: one 2000-job
// SDSC-SP2 replay with FCFS+EASY per iteration.
func BenchmarkSimulatorEASY(b *testing.B) {
	tr := trace.SyntheticSDSCSP2(2000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr.Clone(), sim.Config{
			Policy:     sched.FCFS{},
			Backfiller: backfill.NewEASY(backfill.RequestTime{}),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorPriorityMem measures the enriched-scenario replay cost:
// the EASY workload with per-job memory demands, priority tiers, and the
// aging starvation bound all active. The delta against BenchmarkSimulatorEASY
// is the full price of the scenario semantics (vector cluster accounting,
// scenario queue order, wake events, starving-job protections).
func BenchmarkSimulatorPriorityMem(b *testing.B) {
	tr, err := trace.Enrich(trace.SyntheticSDSCSP2(2000, 1),
		trace.EnrichSpec{MemDist: trace.MemDistProp, PriorityTiers: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	scn := sched.Scenario{Priorities: true, StarvationBound: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr.Clone(), sim.Config{
			Policy:     sched.FCFS{},
			Scenario:   scn,
			Backfiller: &backfill.EASY{Est: backfill.RequestTime{}, Scn: scn},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorConservative measures the profile-based conservative
// backfilling cost on the same workload.
func BenchmarkSimulatorConservative(b *testing.B) {
	tr := trace.SyntheticSDSCSP2(500, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr.Clone(), sim.Config{
			Policy:     sched.FCFS{},
			Backfiller: backfill.NewConservative(backfill.RequestTime{}),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorSlack measures the slack-based backfilling cost on the
// conservative benchmark's workload (the other profile-based heuristic).
func BenchmarkSimulatorSlack(b *testing.B) {
	tr := trace.SyntheticSDSCSP2(500, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr.Clone(), sim.Config{
			Policy:     sched.FCFS{},
			Backfiller: backfill.NewSlack(backfill.RequestTime{}),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfileReserve measures one conservative-style profile round on
// the indexed skyline: bulk-build from 48 running spans, checkpoint, place
// 48 queued jobs via FindStart+ReserveFound, roll back. This is the
// primitive the profile-based backfillers execute once per candidate per
// scheduling round.
func BenchmarkProfileReserve(b *testing.B) {
	rng := stats.NewRNG(3)
	const nRun, nQueue = 32, 48
	spans := make([]cluster.Span, nRun)
	type jb struct {
		dur   int64
		procs int
	}
	queue := make([]jb, nQueue)
	for i := range spans {
		// Running jobs always fit the machine (32 x <=4 <= 128 procs), as the
		// cluster guarantees in real replays — the bulk build must never hit
		// the over-capacity fallback here.
		spans[i] = cluster.Span{End: rng.Int63n(30000) + 1, Procs: rng.Intn(4) + 1}
	}
	for i := range queue {
		queue[i] = jb{dur: rng.Int63n(20000) + 60, procs: rng.Intn(16) + 1}
	}
	p := cluster.NewProfile(128, 0)
	scratch := make([]cluster.Span, nRun)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, spans) // ResetSpans reorders its argument
		p.ResetSpans(128, 0, scratch)
		mark := p.Checkpoint()
		for _, j := range queue {
			s := p.FindStart(0, j.dur, j.procs)
			if err := p.ReserveFound(s, s+j.dur, j.procs); err != nil {
				b.Fatal(err)
			}
		}
		p.Rollback(mark)
	}
}

// BenchmarkProfileFindStart measures the monotonic-candidate walk on a
// loaded skyline (~64 reservations deep), across small and machine-wide
// requests.
func BenchmarkProfileFindStart(b *testing.B) {
	rng := stats.NewRNG(9)
	p := cluster.NewProfile(128, 0)
	for i := 0; i < 64; i++ {
		procs := rng.Intn(24) + 1
		dur := rng.Int63n(5000) + 60
		s := p.FindStart(rng.Int63n(40000), dur, procs)
		if err := p.Reserve(s, s+dur, procs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		procs := i%96 + 1
		_ = p.FindStart(int64(i%50000), int64(i%7000)+60, procs)
	}
}

// deepLoadedProfile builds a skyline of roughly nSegs segments shaped like a
// deep conservative backlog: a staircase of overlapping reservations keeps
// the free count low and jittery across the whole horizon, so machine-scale
// requests must pass thousands of blocking segments before the tail clears.
// With indexed=false the block index is disabled and queries take the plain
// monotonic walk; the same seed yields byte-identical skylines either way.
func deepLoadedProfile(nSegs, total int, indexed bool) *cluster.Profile {
	p := cluster.NewProfile(total, 0)
	if !indexed {
		p.SetIndexThreshold(-1)
	}
	rng := stats.NewRNG(17)
	const step = 60    // one new job every step seconds
	const overlap = 48 // each job spans ~overlap steps
	for i := 0; i < nSegs; i++ {
		procs := rng.Intn(4) + 1 // ~overlap*2.5 of total held at any instant
		start := int64(i) * step
		_ = p.Reserve(start, start+overlap*step, procs) // over-capacity rejections leave holes; fine
	}
	return p
}

// BenchmarkProfileFindStartDeep measures FindStart/MinFree on deep backlogs
// (1K/8K/64K segments), indexed block-skip vs plain monotonic walk. The
// query mix spans the proc range, so half the FindStarts are machine-scale
// requests that must cross the whole loaded region — the regime a
// conservative replay of a million-job trace lives in. The indexed rows are
// the standing O(walked) → O(blocks-touched) regression gate; allocs are
// reported so the 0 allocs/op guarantee shows in the artifact.
func BenchmarkProfileFindStartDeep(b *testing.B) {
	const total = 128
	for _, depth := range []int{1024, 8192, 65536} {
		for _, mode := range []string{"indexed", "walk"} {
			b.Run(fmt.Sprintf("segs=%d/%s", depth, mode), func(b *testing.B) {
				p := deepLoadedProfile(depth, total, mode == "indexed")
				if got := p.Segments(); got < depth/2 {
					b.Fatalf("profile too shallow: %d segments, want >= %d", got, depth/2)
				}
				if want := mode == "indexed"; p.Indexed() != want {
					b.Fatalf("Indexed() = %v in mode %s", p.Indexed(), mode)
				}
				horizon := int64(p.Segments()) * 60
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					procs := i%total + 1
					after := (int64(i) * 2654435761) % horizon
					_ = p.FindStart(after, int64(i%7000)+60, procs)
				}
			})
		}
	}
}

// BenchmarkQueueMaintenanceStatic isolates waiting-queue upkeep for a
// static-score policy: FCFS with no backfiller exercises only binary
// insertion, binary-search removal and the running-set bookkeeping.
func BenchmarkQueueMaintenanceStatic(b *testing.B) {
	tr := trace.SyntheticSDSCSP2(2000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr.Clone(), sim.Config{Policy: sched.FCFS{}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueueMaintenanceTimeVarying is the same workload under WFP3,
// which falls back to one decorated re-sort per event.
func BenchmarkQueueMaintenanceTimeVarying(b *testing.B) {
	tr := trace.SyntheticSDSCSP2(2000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr.Clone(), sim.Config{Policy: sched.WFP3{}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRunning measures State.Running with 512 executing jobs —
// the query every backfiller reservation pass issues against the engine.
func BenchmarkEngineRunning(b *testing.B) {
	const n = 512
	tr := &trace.Trace{Name: "wide", Procs: n}
	for i := 0; i < n; i++ {
		tr.Jobs = append(tr.Jobs, &trace.Job{ID: i + 1, Submit: 0, Runtime: 1 << 30, Request: 1 << 30, Procs: 1})
	}
	e, err := sim.NewEngine(tr, sim.Config{Policy: sched.FCFS{}})
	if err != nil {
		b.Fatal(err)
	}
	e.Step() // all jobs start at t=0
	if len(e.Running()) != n {
		b.Fatalf("%d running, want %d", len(e.Running()), n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rs := e.Running(); len(rs) != n {
			b.Fatal("running set changed")
		}
	}
}

// BenchmarkEventQueue compares the calendar queue (eventq.Queue) against the
// binary heap (eventq.Heap) on the simulator's event pattern: a pending set
// of `hold` completions, each pop of the earliest followed by a push at the
// advancing clock plus a spread-out runtime, interleaved with the engine's
// peek-before-pop probes. The hold sizes bracket the running-set sizes of
// the paper's traces.
func BenchmarkEventQueue(b *testing.B) {
	const pushes = 4096
	mkTimes := func() []int64 {
		rng := stats.NewRNG(11)
		times := make([]int64, pushes)
		for i := range times {
			times[i] = rng.Int63n(36000) + 1 // runtimes up to ~10h
		}
		return times
	}
	for _, hold := range []int{16, 256} {
		times := mkTimes()
		b.Run(fmt.Sprintf("calendar-%d", hold), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var q eventq.Queue
				clock := int64(0)
				for k := 0; k < hold; k++ {
					q.Push(eventq.Event{Time: clock + times[k], Kind: eventq.Finish})
				}
				for k := hold; k < pushes; k++ {
					e, _ := q.Peek()
					e, _ = q.Pop()
					clock = e.Time
					q.Push(eventq.Event{Time: clock + times[k], Kind: eventq.Finish})
				}
				for q.Len() > 0 {
					q.Pop()
				}
			}
		})
		b.Run(fmt.Sprintf("heap-%d", hold), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var q eventq.Heap
				clock := int64(0)
				for k := 0; k < hold; k++ {
					q.Push(eventq.Event{Time: clock + times[k], Kind: eventq.Finish, Seq: k})
				}
				for k := hold; k < pushes; k++ {
					e, _ := q.Peek()
					e, _ = q.Pop()
					clock = e.Time
					q.Push(eventq.Event{Time: clock + times[k], Kind: eventq.Finish, Seq: k})
				}
				for q.Len() > 0 {
					q.Pop()
				}
			}
		})
	}
}

// BenchmarkKernelForward measures one kernel-network score (the inner loop
// of every RL decision).
func BenchmarkKernelForward(b *testing.B) {
	rng := stats.NewRNG(1)
	m := nn.NewMLP([]int{core.JobFeatures, 32, 16, 8, 1}, nn.ReLU, rng)
	cache := nn.NewCache(m)
	x := make([]float64, core.JobFeatures)
	for i := range x {
		x[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Forward(x, cache)
	}
}

// BenchmarkPPOUpdate measures one PPO update over a synthetic batch of 512
// decisions with 16-slot observations.
func BenchmarkPPOUpdate(b *testing.B) {
	rng := stats.NewRNG(2)
	const slots, feat = 16, core.JobFeatures
	policy := nn.NewMLP([]int{feat, 32, 16, 8, 1}, nn.ReLU, rng)
	value := nn.NewMLP([]int{feat * slots, 64, 32, 1}, nn.ReLU, rng)
	cfg := ppo.DefaultConfig()
	cfg.PiIters = 5
	cfg.VIters = 5
	cfg.MiniBatch = 0
	p := ppo.New(policy, value, cfg)

	mkTraj := func() ppo.Trajectory {
		steps := make([]ppo.Step, 8)
		for si := range steps {
			obs := make([][]float64, slots)
			mask := make([]bool, slots)
			flat := make([]float64, feat*slots)
			for i := 0; i < slots; i++ {
				row := make([]float64, feat)
				for k := range row {
					row[k] = rng.Float64()
				}
				obs[i] = row
				mask[i] = true
				copy(flat[i*feat:], row)
			}
			steps[si] = ppo.Step{Obs: obs, FlatObs: flat, Mask: mask, Action: rng.Intn(slots),
				LogP: -2.77, Value: 0, Reward: rng.Float64()}
		}
		return ppo.Trajectory{Steps: steps}
	}
	trajs := make([]ppo.Trajectory, 64)
	for i := range trajs {
		trajs[i] = mkTraj()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Update(trajs)
	}
}

// BenchmarkTrainEpoch measures one full PPO training epoch — rollouts plus
// policy/value update — at the paper's observation shape (MaxObs 128) on a
// small SDSC-SP2 surrogate. A fresh trainer is built per iteration (outside
// the timer) so every iteration does identical work: same seed, same epoch-0
// episode starts, same decision count. This is the end-to-end number the
// batched GEMM kernel targets (EXPERIMENTS.md records before/after).
func BenchmarkTrainEpoch(b *testing.B) {
	tr := trace.SyntheticSDSCSP2(600, 4)
	cfg := core.QuickTrainConfig()
	cfg.Obs.MaxObs = 128
	cfg.TrajPerEpoch = 4
	cfg.EpisodeLen = 100
	cfg.PPO.PiIters = 10
	cfg.PPO.VIters = 10
	cfg.PPO.MiniBatch = 0
	cfg.Seed = 17
	cfg.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		trainer, err := core.NewTrainer(tr.Clone(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := trainer.RunEpoch(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLublinGenerate measures workload-model throughput (1000 jobs per
// iteration).
func BenchmarkLublinGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = lublin.Generate1(1000, uint64(i))
	}
}

// BenchmarkSWFRoundTrip measures SWF serialisation of a 1000-job trace.
func BenchmarkSWFRoundTrip(b *testing.B) {
	tr := trace.SyntheticHPC2N(1000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb writerCounter
		if err := trace.WriteSWF(&sb, tr); err != nil {
			b.Fatal(err)
		}
	}
}

type writerCounter struct{ n int }

func (w *writerCounter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
